package repro

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// The golden digests lock the exact event-by-event behaviour of the
// simulation kernel: each value is an FNV-1a hash of the full network
// trace and delivery trace of one fixed-seed scenario. They were recorded
// before the pooled-event kernel refactor and must never change — any
// perf work on internal/sim or internal/netmodel has to reproduce the
// simulations bit for bit. If a digest changes, the kernel reordered,
// dropped or retimed events; that is a correctness bug, not a baseline to
// re-record.
var goldenDigests = map[string]uint64{
	"FD/n=3/crash+suspicions":    0x4d19b1ab88942220,
	"GM/n=3/crash+suspicions":    0x70317ee7a75ddcc7,
	"GM-nu/n=3/normal":           0xa4d74339a5f5a8ae,
	"FD/n=7/precrash+suspicions": 0x090d2cc8134a61be,
	"GM/n=7/precrash+suspicions": 0x3d7235f83b1428a1,
	"FD/n=3/heartbeat-detector":  0x3802cc0e268ea258,
	"FD/n=3/lambda=2/late-crash": 0x15550c11148ee48d,
	"FD/n=2/minimal":             0xa530831d7d3fd72b,
	"GM/n=5/cascade-crashes":     0xa312c893cf725274,
	"GM/n=5/partition-heal":      0x566979f693c552b8,
	"FD/n=3/churn-recover":       0x38d9f98d7d141577,
	"FD/n=3/long-outage":         0x8c5efb84de1e0fd1,
	// Topology-era scenarios: recorded when internal/topo landed, pinning
	// graph-routed wire traces (relay hops, per-wire occupancy, WAN cuts).
	"FD/n=8/ring":                   0x3fac255812e08916,
	"GM/n=9/geo-wan-partition-heal": 0x17e9eb344144517a,
	// Groups-era scenarios: recorded when internal/groups landed, pinning
	// group-addressed dissemination and cross-group timestamp merging.
	"FD/n=6/groups-disjoint-crash": 0x765b818e418f0638,
	"GM/n=7/groups-chained-cross":  0x2978f936b1b229c1,
	// Parallel-era scenario: recorded (from a serial run) when the
	// parallel engine landed, pinning the one topology that genuinely
	// splits into many conflict domains. TestGoldenTraceDigestsParallel
	// holds every scenario in this table — this one across six true
	// domains — to the same digest under concurrent execution.
	"FD/n=6/one-way-ring-crash": 0x6a65ba96c1dc1e43,
}

// goldenScenario drives one fully scripted cluster and folds every
// observable event — message lifecycle points, deliveries, view changes
// and final counters — into a single digest.
type goldenScenario struct {
	name string
	cfg  ClusterConfig
	// drive scripts broadcasts, crashes and suspicions before the run.
	drive func(c *Cluster)
	run   time.Duration
}

func goldenScenarios() []goldenScenario {
	// Broadcast schedules use co-prime gaps so arrivals interleave with
	// protocol traffic at awkward instants.
	script := func(n int, msgs int) func(c *Cluster) {
		return func(c *Cluster) {
			for i := 0; i < msgs; i++ {
				c.BroadcastAt(i%n, time.Duration(i)*7*time.Millisecond, i)
			}
		}
	}
	return []goldenScenario{
		{
			name: "FD/n=3/crash+suspicions",
			cfg:  ClusterConfig{Algorithm: FD, N: 3, Seed: 41, QoS: Detectors(10, 0, 0)},
			drive: func(c *Cluster) {
				script(3, 40)(c)
				c.SuspectAt(1, 0, 50*time.Millisecond, 30*time.Millisecond)
				c.SuspectAt(2, 0, 95*time.Millisecond, 0)
				c.CrashAt(2, 160*time.Millisecond)
			},
			run: 2 * time.Second,
		},
		{
			name: "GM/n=3/crash+suspicions",
			cfg:  ClusterConfig{Algorithm: GM, N: 3, Seed: 41, QoS: Detectors(10, 0, 0)},
			drive: func(c *Cluster) {
				script(3, 40)(c)
				c.SuspectAt(1, 2, 50*time.Millisecond, 30*time.Millisecond)
				c.CrashAt(2, 160*time.Millisecond)
			},
			run: 2 * time.Second,
		},
		{
			name:  "GM-nu/n=3/normal",
			cfg:   ClusterConfig{Algorithm: GMNonUniform, N: 3, Seed: 7},
			drive: script(3, 30),
			run:   time.Second,
		},
		{
			name: "FD/n=7/precrash+suspicions",
			cfg: ClusterConfig{
				Algorithm: FD, N: 7, Seed: 13,
				PreCrashed: []int{5, 6},
				QoS:        Detectors(0, 400, 20),
			},
			drive: script(5, 35),
			run:   2 * time.Second,
		},
		{
			name: "GM/n=7/precrash+suspicions",
			cfg: ClusterConfig{
				Algorithm: GM, N: 7, Seed: 13,
				PreCrashed: []int{5, 6},
				QoS:        Detectors(0, 400, 20),
			},
			drive: script(5, 35),
			run:   2 * time.Second,
		},
		{
			name: "FD/n=3/heartbeat-detector",
			cfg: ClusterConfig{
				Algorithm: FD, N: 3, Seed: 23,
				Heartbeat: &HeartbeatConfig{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond},
			},
			drive: func(c *Cluster) {
				script(3, 25)(c)
				c.CrashAt(0, 90*time.Millisecond)
			},
			run: time.Second,
		},
		{
			name: "FD/n=3/lambda=2/late-crash",
			cfg:  ClusterConfig{Algorithm: FD, N: 3, Seed: 3, Lambda: 2, QoS: Detectors(20, 0, 0)},
			drive: func(c *Cluster) {
				script(3, 30)(c)
				c.CrashAt(1, 111*time.Millisecond)
			},
			run: 2 * time.Second,
		},
		{
			// N=2 pins the one-destination multicast trace: the wire hop
			// of a 2-process multicast records the concrete destination.
			name: "FD/n=2/minimal",
			cfg:  ClusterConfig{Algorithm: FD, N: 2, Seed: 5, QoS: Detectors(10, 0, 0)},
			drive: func(c *Cluster) {
				script(2, 20)(c)
				c.SuspectAt(1, 0, 60*time.Millisecond, 10*time.Millisecond)
			},
			run: time.Second,
		},
		{
			name: "GM/n=5/cascade-crashes",
			cfg:  ClusterConfig{Algorithm: GM, N: 5, Seed: 99, QoS: Detectors(5, 0, 0)},
			drive: func(c *Cluster) {
				script(5, 45)(c)
				c.CrashAt(4, 80*time.Millisecond)
				c.CrashAt(3, 200*time.Millisecond)
			},
			run: 3 * time.Second,
		},
		{
			// Plan-driven partition: the minority is cut off mid-run and
			// healed; GM excludes it, welcomes it back with state transfer
			// and recovers its swallowed messages.
			name: "GM/n=5/partition-heal",
			cfg: ClusterConfig{
				Algorithm: GM, N: 5, Seed: 17, QoS: Detectors(10, 0, 0),
				Plan: NewFaultPlan().
					Partition(120*time.Millisecond, []ProcessID{0, 1, 2}, []ProcessID{3, 4}).
					Heal(320 * time.Millisecond),
			},
			drive: script(5, 50),
			run:   3 * time.Second,
		},
		{
			// An outage spanning far more than the consensus instance
			// window (64): peers garbage-collect everything p2 misses, so
			// its recovery exercises the decision-log catch-up protocol —
			// suffix request, ordered re-delivery, then live traffic.
			name: "FD/n=3/long-outage",
			cfg: ClusterConfig{
				Algorithm: FD, N: 3, Seed: 37, QoS: Detectors(10, 0, 0),
				Plan: NewFaultPlan().
					Crash(60*time.Millisecond, 2).
					Recover(2100*time.Millisecond, 2),
			},
			drive: func(c *Cluster) {
				for i := 0; i < 120; i++ {
					c.BroadcastAt(i%2, time.Duration(80+15*i)*time.Millisecond, i)
				}
				for i := 0; i < 6; i++ {
					c.BroadcastAt(i%3, time.Duration(2200+30*i)*time.Millisecond, 1000+i)
				}
			},
			run: 8 * time.Second,
		},
		{
			// Ring topology: every multicast propagates hop by hop both
			// ways around, every far unicast relays along the shorter arc.
			// Pins the topology-routed wire trace (relay hops, per-wire
			// occupancy) bit for bit.
			name: "FD/n=8/ring",
			cfg: ClusterConfig{
				Algorithm: FD, N: 8, Seed: 53, QoS: Detectors(10, 0, 0),
				Topology: Ring(8),
			},
			drive: script(8, 30),
			run:   3 * time.Second,
		},
		{
			// Geo topology under a WAN cut: three 3-process sites joined
			// by 5ms WAN links; site 2 is cut along the WAN mid-run and
			// healed. GM excludes the site and welcomes it back via state
			// transfer, all over gateway-relayed routes.
			name: "GM/n=9/geo-wan-partition-heal",
			cfg: func() ClusterConfig {
				geo := Geo(GeoConfig{
					Sites: 3, PerSite: 3,
					WAN: Wire{Delay: 5 * time.Millisecond},
				})
				return ClusterConfig{
					Algorithm: GM, N: 9, Seed: 61, QoS: Detectors(10, 0, 0),
					Topology: geo,
					Plan: NewFaultPlan().
						PartitionSites(150*time.Millisecond, geo, 2).
						Heal(400 * time.Millisecond),
				}
			}(),
			drive: script(9, 40),
			run:   3 * time.Second,
		},
		{
			// Two disjoint ordering groups sharing one wire: each shard
			// runs its own FD stack, the crash of p5 is detected and
			// handled inside group 1 alone, and a handful of cross-group
			// multicasts exercise the timestamp merge. Pins the group-
			// addressed dissemination trace (members-only wire hops) and
			// the per-group protocol interleaving bit for bit.
			name: "FD/n=6/groups-disjoint-crash",
			cfg: ClusterConfig{
				Algorithm: FD, N: 6, Seed: 43, QoS: Detectors(10, 0, 0),
				Groups: Disjoint(6, 2),
			},
			drive: func(c *Cluster) {
				script(6, 36)(c)
				for i := 0; i < 5; i++ {
					c.MulticastAt(i, time.Duration(30+31*i)*time.Millisecond, []int{0, 1}, 100+i)
				}
				c.CrashAt(5, 130*time.Millisecond)
			},
			run: 2 * time.Second,
		},
		{
			// Three chained GM groups, adjacent pairs bridged by one
			// shared process: shard-local traffic everywhere plus cross-
			// group multicasts over every destination combination,
			// including all three groups at once. Pins the cross-group
			// timestamp-merge ordering trace bit for bit.
			name: "GM/n=7/groups-chained-cross",
			cfg: ClusterConfig{
				Algorithm: GM, N: 7, Seed: 47, QoS: Detectors(10, 0, 0),
				Groups: Chained(7, 3),
			},
			drive: func(c *Cluster) {
				script(7, 35)(c)
				c.MulticastAt(0, 40*time.Millisecond, []int{0, 1}, 200)
				c.MulticastAt(3, 73*time.Millisecond, []int{1, 2}, 201)
				c.MulticastAt(6, 101*time.Millisecond, []int{0, 2}, 202)
				c.MulticastAt(2, 137*time.Millisecond, []int{0, 1, 2}, 203)
				c.MulticastAt(5, 171*time.Millisecond, []int{0, 1, 2}, 204)
			},
			run: 2 * time.Second,
		},
		{
			// The one-way ring is the fully directed topology — one
			// conflict domain per process under ParallelSim. Every
			// unicast and multicast relays hop by hop the one way round,
			// a crash severs the relay chain mid-run, and a link fault
			// stretches then clears one hop's delay. Pins the
			// multi-domain wire trace bit for bit.
			name: "FD/n=6/one-way-ring-crash",
			cfg: ClusterConfig{
				Algorithm: FD, N: 6, Seed: 71, QoS: Detectors(10, 0, 0),
				Topology: OneWayRing(6),
				Plan: NewFaultPlan().
					Link(90*time.Millisecond, 2, 3, 0, 3*time.Millisecond).
					Link(240*time.Millisecond, 2, 3, 0, 0).
					Crash(320*time.Millisecond, 4),
			},
			drive: script(6, 36),
			run:   3 * time.Second,
		},
		{
			// Crash-recover-crash churn of the coordinator through the
			// plan surface; FD resumes p0 with its state intact.
			name: "FD/n=3/churn-recover",
			cfg: ClusterConfig{
				Algorithm: FD, N: 3, Seed: 29, QoS: Detectors(10, 0, 0),
				Plan: NewFaultPlan().
					Crash(70*time.Millisecond, 0).
					Recover(180*time.Millisecond, 0).
					Crash(260*time.Millisecond, 0),
			},
			drive: script(3, 40),
			run:   3 * time.Second,
		},
	}
}

// digestScenario runs one scenario and returns its trace digest.
func digestScenario(sc goldenScenario) uint64 {
	h := fnv.New64a()
	line := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{'\n'})
	}
	cfg := sc.cfg
	cfg.OnDeliver = func(d Delivery) {
		line("D %d %d:%d %d", d.Process, d.ID.Origin, d.ID.Seq, d.At)
	}
	cfg.OnView = func(v ViewInfo) {
		line("V %d %d %v %d", v.Process, v.ViewID, v.Members, v.At)
	}
	c := NewCluster(cfg)
	c.SetTrace(func(ev NetEvent) {
		line("N %s %d %d %s %d", ev.Stage, ev.From, ev.To, ev.Payload, ev.At)
	})
	sc.drive(c)
	c.Run(sc.run)
	st := c.Stats()
	line("S %d %d %d %d", st.Unicasts, st.Multicasts, st.WireSlots, st.Deliveries)
	return h.Sum64()
}

// TestGoldenTraceDigests asserts that fixed-seed simulations — FD and GM,
// with crashes, pre-crashes and both scripted and stochastic suspicions —
// reproduce their recorded full-trace digest bit for bit.
func TestGoldenTraceDigests(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want, ok := goldenDigests[sc.name]
			if !ok {
				t.Fatalf("no golden digest recorded for %q", sc.name)
			}
			got := digestScenario(sc)
			if got != want {
				t.Fatalf("trace digest = %#016x, want %#016x — the kernel no longer reproduces this simulation bit for bit", got, want)
			}
		})
	}
}

// TestFDLongOutageClusterUnwedges is the facade-level acceptance check
// for decision-log catch-up: after an outage spanning far more than the
// consensus instance window, the recovered process delivers the entire
// missed suffix and every post-recovery message, in the same order as an
// always-up process.
func TestFDLongOutageClusterUnwedges(t *testing.T) {
	var sc goldenScenario
	for _, s := range goldenScenarios() {
		if s.name == "FD/n=3/long-outage" {
			sc = s
		}
	}
	if sc.drive == nil {
		t.Fatal("long-outage scenario missing")
	}
	cfg := sc.cfg
	perProc := make([][]MessageID, cfg.N)
	cfg.OnDeliver = func(d Delivery) {
		perProc[d.Process] = append(perProc[d.Process], d.ID)
	}
	c := NewCluster(cfg)
	sc.drive(c)
	c.Run(sc.run)
	const sent = 126 // 120 outage-era + 6 post-recovery broadcasts
	if got := len(perProc[0]); got != sent {
		t.Fatalf("reference process delivered %d/%d messages", got, sent)
	}
	if got := len(perProc[2]); got != sent {
		t.Fatalf("recovered process delivered %d/%d messages — still wedged behind the instance window", got, sent)
	}
	for i := range perProc[0] {
		if perProc[0][i] != perProc[2][i] {
			t.Fatalf("delivery order diverges at %d: p0 has %v, p2 has %v", i, perProc[0][i], perProc[2][i])
		}
	}
}

// TestGoldenTraceDigestsParallel reruns every golden scenario with
// ParallelSim at several worker counts and holds it to the same digest
// as the serial engine: concurrent execution must not reorder, retime
// or drop a single observable event. The shared-wire scenarios pin the
// single-domain window machinery; the one-way-ring scenario pins a
// genuine six-domain run.
func TestGoldenTraceDigestsParallel(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want := goldenDigests[sc.name]
			for _, workers := range []int{1, 2, 4} {
				pc := sc
				pc.cfg.ParallelSim = true
				pc.cfg.SimWorkers = workers
				if got := digestScenario(pc); got != want {
					t.Fatalf("parallel digest (workers=%d) = %#016x, want %#016x — parallel execution diverged from serial", workers, got, want)
				}
			}
		})
	}
}

// TestGoldenDigestsStableAcrossRuns guards the digest harness itself:
// running the same scenario twice in one process must agree, or the
// digests prove nothing.
func TestGoldenDigestsStableAcrossRuns(t *testing.T) {
	sc := goldenScenarios()[0]
	if a, b := digestScenario(sc), digestScenario(sc); a != b {
		t.Fatalf("same scenario digested %#016x then %#016x in one process", a, b)
	}
}
