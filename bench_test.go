// Benchmarks regenerating every figure of the paper's evaluation (§7) at
// reduced resolution — one benchmark per figure panel plus the §7/§8
// ablations and micro-benchmarks of the simulation substrate. The full-
// resolution sweeps live in cmd/figures; these benches exist so
// `go test -bench=.` exercises every experiment end to end and reports
// the measured latency as a custom metric (latency_ms).
//
// Absolute latencies are virtual-time results of the paper's network
// model, not wall-clock performance; ns/op measures the simulator itself.
package repro

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// benchSteady runs one steady-state point per iteration and reports the
// virtual latency of the last run.
func benchSteady(b *testing.B, cfg Config) {
	b.Helper()
	cfg.Warmup = time.Second
	cfg.Measure = 3 * time.Second
	cfg.Drain = 15 * time.Second
	cfg.Replications = 1
	var last Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		last = RunSteady(cfg)
	}
	if last.Stable {
		b.ReportMetric(last.PerMessage.Mean, "latency_ms")
	} else {
		b.ReportMetric(-1, "latency_ms") // unstable point, as in Fig. 6
	}
	b.ReportMetric(float64(last.Messages), "msgs")
}

// benchTransient runs one crash-transient point per iteration.
func benchTransient(b *testing.B, cfg TransientConfig) {
	b.Helper()
	cfg.Warmup = time.Second
	cfg.Drain = 15 * time.Second
	cfg.Replications = 3
	var last TransientResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		last = RunTransient(cfg)
	}
	b.ReportMetric(last.Latency.Mean, "latency_ms")
	b.ReportMetric(last.Overhead.Mean, "overhead_ms")
}

// BenchmarkFig4NormalSteady reproduces Figure 4: latency vs throughput
// with neither crashes nor suspicions; FD and GM are identical here.
func BenchmarkFig4NormalSteady(b *testing.B) {
	for _, alg := range []Algorithm{FD, GM} {
		for _, n := range []int{3, 7} {
			for _, thr := range []float64{10, 300, 600} {
				b.Run(fmt.Sprintf("%v/n=%d/T=%.0f", alg, n, thr), func(b *testing.B) {
					benchSteady(b, Config{Algorithm: alg, N: n, Throughput: thr})
				})
			}
		}
	}
}

// BenchmarkFig5CrashSteady reproduces Figure 5: latency with long-ago
// crashes; more crashes mean less load and, for GM, fewer acks.
func BenchmarkFig5CrashSteady(b *testing.B) {
	panels := []struct {
		n       int
		crashes int
	}{
		{3, 1}, {7, 1}, {7, 3},
	}
	for _, alg := range []Algorithm{FD, GM} {
		for _, p := range panels {
			b.Run(fmt.Sprintf("%v/n=%d/crashes=%d/T=300", alg, p.n, p.crashes), func(b *testing.B) {
				cfg := Config{Algorithm: alg, N: p.n, Throughput: 300}
				for k := 0; k < p.crashes; k++ {
					cfg.Crashed = append(cfg.Crashed, ProcessID(p.n-1-k))
				}
				benchSteady(b, cfg)
			})
		}
	}
}

// BenchmarkFig6SuspicionSteadyTMR reproduces Figure 6: latency vs the
// mistake recurrence time TMR with TM = 0.
func BenchmarkFig6SuspicionSteadyTMR(b *testing.B) {
	for _, alg := range []Algorithm{FD, GM} {
		for _, tmr := range []float64{10, 100, 1000} {
			b.Run(fmt.Sprintf("%v/n=3/T=10/TMR=%.0fms", alg, tmr), func(b *testing.B) {
				benchSteady(b, Config{
					Algorithm: alg, N: 3, Throughput: 10,
					QoS: Detectors(0, tmr, 0),
				})
			})
		}
	}
}

// BenchmarkFig7SuspicionSteadyTM reproduces Figure 7: latency vs the
// mistake duration TM with TMR fixed.
func BenchmarkFig7SuspicionSteadyTM(b *testing.B) {
	for _, alg := range []Algorithm{FD, GM} {
		for _, tm := range []float64{10, 100} {
			b.Run(fmt.Sprintf("%v/n=3/T=10/TMR=1000ms/TM=%.0fms", alg, tm), func(b *testing.B) {
				benchSteady(b, Config{
					Algorithm: alg, N: 3, Throughput: 10,
					QoS: Detectors(0, 1000, tm),
				})
			})
		}
	}
}

// BenchmarkFig8CrashTransient reproduces Figure 8: the latency overhead of
// a probe broadcast at the instant the coordinator/sequencer crashes.
func BenchmarkFig8CrashTransient(b *testing.B) {
	for _, alg := range []Algorithm{FD, GM} {
		for _, n := range []int{3, 7} {
			for _, td := range []float64{0, 10, 100} {
				b.Run(fmt.Sprintf("%v/n=%d/TD=%.0fms/T=100", alg, n, td), func(b *testing.B) {
					benchTransient(b, TransientConfig{
						Config: Config{
							Algorithm: alg, N: n, Throughput: 100,
							QoS: Detectors(td, 0, 0),
						},
						Crash:  0,
						Sender: 1,
					})
				})
			}
		}
	}
}

// BenchmarkAblationRenumbering isolates the §7 coordinator-renumbering
// optimisation: crash-steady with the round-1 coordinator long dead.
func BenchmarkAblationRenumbering(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			benchSteady(b, Config{
				Algorithm: FD, N: 3, Throughput: 300,
				Crashed:         []ProcessID{0},
				DisableRenumber: disable,
			})
		})
	}
}

// BenchmarkAblationNonUniform isolates the §8 uniformity trade-off.
func BenchmarkAblationNonUniform(b *testing.B) {
	for _, alg := range []Algorithm{GM, GMNonUniform} {
		b.Run(alg.String(), func(b *testing.B) {
			benchSteady(b, Config{Algorithm: alg, N: 3, Throughput: 300})
		})
	}
}

// BenchmarkAblationLambda sweeps the network model's λ parameter (§6.1).
func BenchmarkAblationLambda(b *testing.B) {
	for _, lambda := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("lambda=%.1f", lambda), func(b *testing.B) {
			benchSteady(b, Config{Algorithm: FD, N: 3, Throughput: 100, Lambda: lambda})
		})
	}
}

// BenchmarkSweepParallel measures the experiment Runner's worker pool on
// a fixed Fig. 4-shaped sweep (2 algorithms x 3 throughputs x 4
// replications = 24 independent simulations): serial versus all-cores.
// Results are bit-identical at any worker count, so ns/op is the only
// thing that moves; the speedup is roughly min(workers, 24) on idle
// hardware. BENCH_sweep.json records a measured data point.
func BenchmarkSweepParallel(b *testing.B) {
	sweep := Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            3,
			Warmup:       500 * time.Millisecond,
			Measure:      2 * time.Second,
			Drain:        10 * time.Second,
			Replications: 4,
		},
		Algorithms:  []Algorithm{FD, GM},
		Throughputs: []float64{50, 200, 400},
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &Runner{Workers: workers}
			var last []Result
			for i := 0; i < b.N; i++ {
				last = r.Sweep(sweep)
			}
			msgs := 0
			for _, res := range last {
				msgs += res.Messages
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkParallelSim measures one simulation executed serially vs
// through the parallel engine on the canonical multi-domain topology
// (OneWayRing: one conflict domain per process, lookahead one wire
// traversal). On a multi-core host the parallel variants buy wall-clock
// time; on one CPU they price the window/commit machinery's overhead.
// Results are bit-identical in every variant — the msgs metric must
// agree across all sub-benchmarks.
func BenchmarkParallelSim(b *testing.B) {
	cfg := Config{
		Algorithm:    FD,
		N:            8,
		Topology:     OneWayRing(8),
		QoS:          Detectors(10, 0, 0),
		Throughput:   100,
		Warmup:       500 * time.Millisecond,
		Measure:      2 * time.Second,
		Drain:        10 * time.Second,
		Replications: 1,
	}
	type variant struct {
		name     string
		parallel bool
		workers  int
	}
	variants := []variant{
		{"serial", false, 0},
		{"parallel/workers=1", true, 1},
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		variants = append(variants, variant{fmt.Sprintf("parallel/workers=%d", n), true, n})
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			c := cfg
			c.ParallelSim = v.parallel
			c.SimWorkers = v.workers
			r := &Runner{Workers: 1}
			var last Result
			for i := 0; i < b.N; i++ {
				last = r.Steady(c)
			}
			b.ReportMetric(float64(last.Messages), "msgs")
		})
	}
}

// BenchmarkTopologyNScale measures the simulator's cost of a large-N
// point on each topology generator — the -fig nscale workload at n=256.
// ns/op is what topology routing costs the kernel (graph-relayed hops
// multiply scheduler events); latency_ms is the virtual-time result, the
// dissemination cost of the shape itself.
func BenchmarkTopologyNScale(b *testing.B) {
	const n = 256
	shapes := []struct {
		name  string
		build func(n int) *Topology
	}{
		{"fullmesh", FullMesh},
		{"clique", Clique},
		{"ring", Ring},
		{"geo", func(n int) *Topology {
			return Geo(GeoConfig{Sites: 4, PerSite: n / 4, WAN: Wire{Delay: 5 * time.Millisecond}})
		}},
	}
	for _, shape := range shapes {
		b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
			cfg := Config{
				Algorithm:    FD,
				N:            n,
				Throughput:   3,
				Topology:     shape.build(n),
				Warmup:       time.Second,
				Measure:      3 * time.Second,
				Drain:        60 * time.Second,
				Replications: 1,
			}
			var last Result
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				last = RunSteady(cfg)
			}
			if last.Latency.N > 0 {
				b.ReportMetric(last.Latency.Mean, "latency_ms")
			}
			b.ReportMetric(float64(last.Messages), "msgs")
		})
	}
}

// BenchmarkMultiGroupThroughput measures the sharded ordering layer at a
// fixed total offered rate spread over a growing group count — the
// -fig groups panel G1 workload as a kernel benchmark. Each group is a
// Geo site of 3 processes with its own LAN wire; traffic is shard-local,
// so the per-group rate falls as 1/groups while the aggregate stays
// fixed. ns/op is what the group layer costs the simulator as the
// instance count grows; latency_ms is the virtual-time result, falling
// as each shard's wire decongests. BENCH_sweep.json records a measured
// data point.
func BenchmarkMultiGroupThroughput(b *testing.B) {
	const totalRate = 240.0
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("groups=%d", k), func(b *testing.B) {
			t := Geo(GeoConfig{Sites: k, PerSite: 3, WAN: Wire{Delay: 5 * time.Millisecond}})
			cfg := Config{
				Algorithm:    FD,
				N:            3 * k,
				Throughput:   totalRate,
				Topology:     t,
				Groups:       GroupsFromSites(t),
				Warmup:       time.Second,
				Measure:      3 * time.Second,
				Drain:        15 * time.Second,
				Replications: 1,
			}
			b.ReportAllocs()
			var last Result
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				last = RunSteady(cfg)
			}
			if last.Latency.N > 0 {
				b.ReportMetric(last.Latency.Mean, "latency_ms")
			}
			b.ReportMetric(float64(last.Messages), "msgs")
		})
	}
}

// BenchmarkCollectorModes measures the distribution carrier the
// experiments aggregate into: exact mode retains every observation,
// sketch mode (Config.DistSketch) folds them into bounded log buckets.
// One op adds 1000 heavy-tailed observations to a fresh collector and
// reads its quantiles; bytes/op is the number that motivates sketch
// mode for multi-million-message points.
func BenchmarkCollectorModes(b *testing.B) {
	obs := make([]float64, 1000)
	x := uint64(99)
	for i := range obs {
		x = x*6364136223846793005 + 1442695040888963407
		obs[i] = 0.1 * math.Pow(10, 4*float64(x>>11)/float64(1<<53))
	}
	run := func(b *testing.B, mk func() Collector) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := mk()
			for _, v := range obs {
				c.Add(v)
			}
			if q := c.Quantiles(); q.N != len(obs) {
				b.Fatalf("collected %d observations, want %d", q.N, len(obs))
			}
		}
	}
	b.Run("exact", func(b *testing.B) { run(b, func() Collector { return Collector{} }) })
	b.Run("sketch/alpha=0.01", func(b *testing.B) { run(b, func() Collector { return NewSketchCollector(0.01) }) })
}

// BenchmarkSimEngine measures the discrete-event kernel's closure form
// (Schedule/After): the cancellable-handle API protocol timers use. Each
// op still allocates its *Event handle; the closure-free form below does
// not.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Millisecond, func() {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

// countingHandler is a minimal sim.MsgHandler for kernel benchmarks.
type countingHandler struct{ n int }

func (h *countingHandler) HandleMsg(op uint8, a, b int, payload any) { h.n++ }

// BenchmarkSimEngineMsg measures the closure-free form (ScheduleMsg):
// typed records recycled through the engine's free list, the form the
// network model's per-message hot path runs on. Zero allocations once the
// free list is warm.
func BenchmarkSimEngineMsg(b *testing.B) {
	eng := sim.New()
	h := &countingHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AfterMsg(time.Millisecond, h, 0, i, i, nil)
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
	if h.n != b.N {
		b.Fatalf("handled %d events, want %d", h.n, b.N)
	}
}

// BenchmarkNetModelMulticast measures the contention model's message
// pipeline: one multicast fan-out to 7 processes per iteration. The one
// remaining alloc/op is the benchmark boxing its int payload.
func BenchmarkNetModelMulticast(b *testing.B) {
	eng := sim.New()
	nw := netmodel.New(eng, netmodel.DefaultConfig(8), func(int, int, any) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Multicast(i%8, i)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkClusterBroadcast measures the full stack: one atomic broadcast
// ordered and delivered on a 3-process FD cluster per iteration.
func BenchmarkClusterBroadcast(b *testing.B) {
	delivered := 0
	c := NewCluster(ClusterConfig{
		Algorithm: FD,
		N:         3,
		OnDeliver: func(Delivery) { delivered++ },
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Broadcast(i%3, i)
		c.Run(20 * time.Millisecond)
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no deliveries")
	}
}

// BenchmarkExtensionHeartbeatFD compares the abstract QoS detector with
// the concrete heartbeat detector (whose traffic shares the network) at
// the same workload.
func BenchmarkExtensionHeartbeatFD(b *testing.B) {
	run := func(b *testing.B, hb *HeartbeatConfig) {
		var latency time.Duration
		count := 0
		for i := 0; i < b.N; i++ {
			first := make(map[MessageID]bool)
			sent := make(map[MessageID]time.Duration)
			c := NewCluster(ClusterConfig{
				Algorithm: FD,
				N:         3,
				Seed:      uint64(i + 1),
				Heartbeat: hb,
				OnDeliver: func(d Delivery) {
					if !first[d.ID] {
						first[d.ID] = true
						if t0, ok := sent[d.ID]; ok {
							latency += d.At - t0
							count++
						}
					}
				},
			})
			for k := 0; k < 100; k++ {
				at := time.Duration(k) * 5 * time.Millisecond
				sent[MessageID{Origin: ProcessID(k % 3), Seq: uint64(k/3 + 1)}] = at
				c.BroadcastAt(k%3, at, k)
			}
			c.Run(2 * time.Second)
		}
		if count > 0 {
			b.ReportMetric(float64(latency.Microseconds())/float64(count)/1000, "latency_ms")
		}
	}
	b.Run("qos-model", func(b *testing.B) { run(b, nil) })
	b.Run("heartbeat-10ms-30ms", func(b *testing.B) {
		run(b, &HeartbeatConfig{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond})
	})
}
